#!/usr/bin/env python3
"""Perf-regression report for the selection engine and the e2e loop.

Runs bench_micro (google-benchmark) with JSON output and distills it into
two stable, diff-friendly JSON artifacts at the repo root:

  BENCH_selection.json  - engine microbenches (greedy gain, env build,
                          reconcile, select) with median ns/op per name, plus
                          the derived prefix-sum vs legacy-scan speedup on
                          the greedy-gain sweep and whether it meets the
                          >= 5x target at 64 PoIs / 256 candidates.
  BENCH_e2e.json        - the end-to-end simulator bench (clean run).
  BENCH_faults.json     - the clean/faulted e2e pair plus two derived
                          ratios: what the active fault plan costs the
                          mission (faulted_vs_clean) and what the fault
                          layer costs a clean run (clean_vs_prior, measured
                          against the previously committed BENCH_e2e.json;
                          tracked target < 5%).

CI runs this as a smoke job (with PHOTODTN_BENCH_RUNS reduced) and uploads
the JSONs as artifacts; numbers committed at the repo root record the perf
trajectory across PRs (see EXPERIMENTS.md, "Perf trajectory").

Usage:
  tools/bench/bench_report.py --bench-binary build/bench/bench_micro \
      [--out-dir .] [--repetitions 5] [--check]

--check exits non-zero when the greedy-gain speedup misses the target —
advisory in CI smoke runs (shared runners are noisy), enforced locally.
"""

import argparse
import json
import statistics
import subprocess
import sys
from pathlib import Path

SELECTION_FILTER = (
    "BM_GreedyGain|BM_GreedyGainScan|BM_SelectionEnvBuild|"
    "BM_SelectionEnvReconcile|BM_GreedySelectEnv"
)
FAULTS_FILTER = "BM_OurSchemeE2E(_Faults)?$"
E2E_CLEAN = "BM_OurSchemeE2E"
E2E_FAULTED = "BM_OurSchemeE2E_Faults"
# Fault-layer overhead on a clean run (new clean median vs the previously
# committed one): tracked, target < 5%. Advisory — committed numbers and CI
# runners differ in load, so --check reports but does not fail on it.
FAULT_OVERHEAD_TARGET = 0.05

# The tentpole target: prefix-sum gain sweep at least 5x the legacy scan at
# 64 PoIs / 256 candidates.
TARGET_PAIR = ("BM_GreedyGain/64/256", "BM_GreedyGainScan/64/256")
TARGET_SPEEDUP = 5.0


def git_sha(repo_root: Path) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_bench(binary: Path, bench_filter: str, repetitions: int) -> dict:
    cmd = [
        str(binary),
        f"--benchmark_filter={bench_filter}",
        "--benchmark_format=json",
        f"--benchmark_repetitions={repetitions}",
        "--benchmark_report_aggregates_only=false",
    ]
    out = subprocess.run(cmd, capture_output=True, text=True)
    if out.returncode != 0:
        sys.stderr.write(out.stderr)
        raise SystemExit(f"bench run failed: {' '.join(cmd)}")
    return json.loads(out.stdout)


def median_ns_by_name(raw: dict) -> dict:
    """name -> {median_ns, runs} over the per-repetition iterations."""
    samples: dict[str, list[float]] = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue  # we aggregate ourselves
        name = b["name"].split("/repeats:")[0]
        # Normalize to nanoseconds regardless of the reported time_unit.
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        samples.setdefault(name, []).append(float(b["real_time"]) * scale)
    return {
        name: {"median_ns": statistics.median(vals), "runs": len(vals)}
        for name, vals in sorted(samples.items())
    }


def write_report(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-binary", required=True, type=Path)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the greedy-gain speedup misses the target",
    )
    args = parser.parse_args()

    if not args.bench_binary.exists():
        raise SystemExit(f"bench binary not found: {args.bench_binary}")
    args.out_dir.mkdir(parents=True, exist_ok=True)
    sha = git_sha(args.out_dir.resolve())

    selection = median_ns_by_name(
        run_bench(args.bench_binary, SELECTION_FILTER, args.repetitions)
    )
    engine, baseline = (selection.get(n) for n in TARGET_PAIR)
    speedup = (
        baseline["median_ns"] / engine["median_ns"]
        if engine and baseline and engine["median_ns"] > 0
        else None
    )
    write_report(
        args.out_dir / "BENCH_selection.json",
        {
            "schema": "photodtn-bench/1",
            "git_sha": sha,
            "benchmarks": selection,
            "derived": {
                "greedy_gain_speedup": speedup,
                "speedup_target": TARGET_SPEEDUP,
                "meets_target": speedup is not None and speedup >= TARGET_SPEEDUP,
            },
        },
    )

    # Snapshot the previously committed clean e2e median *before* we
    # overwrite it: it is the baseline for the fault-layer overhead check
    # (the prior binary had no fault layer in the loop / an older one).
    prior_e2e_path = args.out_dir / "BENCH_e2e.json"
    prior_clean_ns = None
    if prior_e2e_path.exists():
        try:
            prior = json.loads(prior_e2e_path.read_text())
            prior_clean_ns = prior["benchmarks"][E2E_CLEAN]["median_ns"]
        except (json.JSONDecodeError, KeyError, TypeError):
            prior_clean_ns = None

    e2e_all = median_ns_by_name(
        run_bench(args.bench_binary, FAULTS_FILTER, args.repetitions)
    )
    e2e = {k: v for k, v in e2e_all.items() if k == E2E_CLEAN}
    write_report(
        prior_e2e_path,
        {
            "schema": "photodtn-bench/1",
            "git_sha": sha,
            "benchmarks": e2e,
        },
    )

    clean, faulted = (e2e_all.get(n) for n in (E2E_CLEAN, E2E_FAULTED))
    faulted_vs_clean = (
        faulted["median_ns"] / clean["median_ns"]
        if clean and faulted and clean["median_ns"] > 0
        else None
    )
    clean_vs_prior = (
        clean["median_ns"] / prior_clean_ns - 1.0
        if clean and prior_clean_ns
        else None
    )
    write_report(
        args.out_dir / "BENCH_faults.json",
        {
            "schema": "photodtn-bench/1",
            "git_sha": sha,
            "benchmarks": e2e_all,
            "derived": {
                "faulted_vs_clean": faulted_vs_clean,
                "clean_overhead_vs_prior": clean_vs_prior,
                "overhead_target": FAULT_OVERHEAD_TARGET,
                "meets_overhead_target": clean_vs_prior is not None
                and clean_vs_prior < FAULT_OVERHEAD_TARGET,
            },
        },
    )

    if speedup is not None:
        print(f"greedy gain speedup (prefix vs scan, 64 PoIs / 256 cands): "
              f"{speedup:.2f}x (target {TARGET_SPEEDUP:.1f}x)")
    if faulted_vs_clean is not None:
        print(f"faulted e2e vs clean: {faulted_vs_clean:.3f}x")
    if clean_vs_prior is not None:
        print(f"fault-layer overhead on clean run vs prior commit: "
              f"{100.0 * clean_vs_prior:+.1f}% (target < "
              f"{100.0 * FAULT_OVERHEAD_TARGET:.0f}%)")
    if args.check and (speedup is None or speedup < TARGET_SPEEDUP):
        print("FAIL: speedup target missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
