#!/usr/bin/env python3
"""Perf-regression report for the selection engine and the e2e loop.

Runs bench_micro (google-benchmark) with JSON output and distills it into
stable, diff-friendly JSON artifacts at the repo root:

  BENCH_selection.json  - engine microbenches (greedy gain, batched SoA
                          sweep, CELF selection, env build, reconcile,
                          select) with median ns/op per name, plus derived
                          numbers: the batched-kernel vs legacy-scan speedup
                          on the greedy-gain sweep (target below) and the
                          CELF lazy re-evaluation rate.
  BENCH_e2e.json        - the end-to-end simulator bench (clean run) and
                          the pool-backed multi-seed experiment sweep.
  BENCH_faults.json     - the clean/faulted e2e pair plus derived numbers:
                          what the active fault plan costs the mission
                          (faulted_vs_clean), and the clean-run drift vs the
                          previously committed BENCH_e2e.json reported two
                          ways — clean_delta_vs_prior is the *signed* drift
                          (negative = this commit is faster), while
                          clean_overhead_vs_prior clamps at zero and is the
                          number the < 5% overhead gate checks. Earlier
                          revisions conflated the two, so a 6% *improvement*
                          read as if it were being tested against the
                          overhead budget.
  BENCH_obs.json        - the observability pair: the obs-on e2e run vs the
                          clean one (obs_enabled_vs_clean, advisory — the
                          enabled path records every metric and span), and
                          the *disabled* cost, which is the gate: the clean
                          e2e median (every obs site a branch test) vs a
                          prior-commit clean median, target < 2% clamped
                          overhead. The committed-file comparison is
                          confounded by cross-session machine drift;
                          --prior-binary (a bench_micro built from the
                          previous commit, e.g. in a git worktree) measures
                          the prior clean run in the *same session*, and
                          when given that same-session number drives the
                          gate.
  BENCH_persist.json    - the checkpointing pair: the e2e run snapshotting
                          every 500 events vs the clean one
                          (persist_enabled_vs_clean, advisory — the enabled
                          path serializes and atomically replaces a file),
                          and the *disabled* cost, which is the gate: with
                          no --checkpoint-every, persistence is one
                          unset-hook test per event, so the clean e2e drift
                          vs the prior clean median must stay < 2%
                          (clamped, same --prior-binary preference as the
                          obs gate).

Every run also appends one line to BENCH_history.jsonl (git sha, UTC date,
all medians, all derived numbers) — an append-only perf trajectory that
survives the snapshot JSONs being overwritten each PR.

CI runs this as a smoke job (with PHOTODTN_BENCH_RUNS reduced) and uploads
the JSONs as artifacts; numbers committed at the repo root record the perf
trajectory across PRs (see EXPERIMENTS.md, "Perf trajectory").

Usage:
  tools/bench/bench_report.py --bench-binary build/bench/bench_micro \
      [--out-dir .] [--repetitions 5] [--check]

--check exits non-zero when the greedy-gain speedup misses the target —
advisory in CI smoke runs (shared runners are noisy), enforced locally.
"""

import argparse
import datetime
import json
import statistics
import subprocess
import sys
from pathlib import Path

SELECTION_FILTER = (
    "BM_GreedyGain|BM_GreedyGainScan|BM_GainsBatch|BM_GreedyGainCelf|"
    "BM_SelectionEnvBuild|BM_SelectionEnvReconcile|BM_GreedySelectEnv"
)
E2E_EXTRA_FILTER = "BM_ExperimentSweep"
FAULTS_FILTER = "BM_OurSchemeE2E(_Faults|_Obs|_Ckpt)?$"
E2E_CLEAN = "BM_OurSchemeE2E"
E2E_FAULTED = "BM_OurSchemeE2E_Faults"
E2E_OBS = "BM_OurSchemeE2E_Obs"
E2E_CKPT = "BM_OurSchemeE2E_Ckpt"
CELF_BENCH = "BM_GreedyGainCelf/250/256"
# Fault-layer overhead on a clean run (new clean median vs the previously
# committed one): tracked, target < 5%. The gate checks the clamped
# overhead; the signed delta is recorded alongside it. Advisory — committed
# numbers and CI runners differ in load, so --check reports but does not
# fail on it.
FAULT_OVERHEAD_TARGET = 0.05
# Obs-disabled overhead budget: the clean e2e run (obs off, every record
# site reduced to a null/branch test) vs the previously committed clean
# median. Advisory under --check for the same runner-noise reason.
OBS_OVERHEAD_TARGET = 0.02
# Checkpointing-disabled overhead budget: with no --checkpoint-every, the
# persist layer is one unset-hook test per event-loop iteration, so the
# clean e2e run must not drift more than 2% vs its pre-persist prior.
PERSIST_OVERHEAD_TARGET = 0.02

# The tentpole target: the production gain sweep (batched SoA kernels +
# bucket-LUT segment lookup) vs the legacy per-segment scan at 64 PoIs /
# 256 candidates. Raised from 5x after the batched kernels landed measuring
# ~27x on the reference box — 15x keeps headroom for runner noise.
TARGET_PAIR = ("BM_GreedyGain/64/256", "BM_GreedyGainScan/64/256")
TARGET_SPEEDUP = 15.0

# google-benchmark's fixed per-benchmark JSON keys; anything else numeric is
# a user counter (reeval_rate, segs_per_poi, ...).
_STANDARD_KEYS = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "label",
    "error_occurred", "error_message",
}


def git_sha(repo_root: Path) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_bench(binary: Path, bench_filter: str, repetitions: int) -> dict:
    cmd = [
        str(binary),
        f"--benchmark_filter={bench_filter}",
        "--benchmark_format=json",
        f"--benchmark_repetitions={repetitions}",
        "--benchmark_report_aggregates_only=false",
    ]
    out = subprocess.run(cmd, capture_output=True, text=True)
    if out.returncode != 0:
        sys.stderr.write(out.stderr)
        raise SystemExit(f"bench run failed: {' '.join(cmd)}")
    return json.loads(out.stdout)


def median_ns_by_name(raw: dict) -> dict:
    """name -> {median_ns, runs[, counters]} over per-repetition iterations."""
    samples: dict[str, list[float]] = {}
    counters: dict[str, dict[str, list[float]]] = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue  # we aggregate ourselves
        name = b["name"].split("/repeats:")[0]
        # Normalize to nanoseconds regardless of the reported time_unit.
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        samples.setdefault(name, []).append(float(b["real_time"]) * scale)
        for key, val in b.items():
            if key in _STANDARD_KEYS or not isinstance(val, (int, float)):
                continue
            counters.setdefault(name, {}).setdefault(key, []).append(float(val))
    out = {}
    for name, vals in sorted(samples.items()):
        entry = {"median_ns": statistics.median(vals), "runs": len(vals)}
        if name in counters:
            entry["counters"] = {
                k: statistics.median(v) for k, v in sorted(counters[name].items())
            }
        out[name] = entry
    return out


def same_session_clean_delta(
    current: Path, prior: Path, repetitions: int, pairs: int = 3
) -> float | None:
    """Signed clean-e2e drift of `current` vs `prior`, both run now.

    The binaries alternate (current, prior, current, prior, ...) so a load
    spike hits both sides, and each side is summarized by the *minimum* of
    its per-run medians: on a shared container noise only ever adds time,
    so the min is the estimate least contaminated by other tenants.
    """
    cur_meds, pri_meds = [], []
    for _ in range(pairs):
        for binary, meds in ((current, cur_meds), (prior, pri_meds)):
            entry = median_ns_by_name(
                run_bench(binary, f"{E2E_CLEAN}$", repetitions)
            ).get(E2E_CLEAN)
            if entry:
                meds.append(entry["median_ns"])
    if not cur_meds or not pri_meds or min(pri_meds) <= 0:
        return None
    return min(cur_meds) / min(pri_meds) - 1.0


def write_report(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def append_history(out_dir: Path, sha: str, reports: dict) -> None:
    """One JSONL line per report run: the append-only perf trajectory."""
    record = {
        "schema": "photodtn-bench-history/1",
        "git_sha": sha,
        "date_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "medians_ns": {
            name: entry["median_ns"]
            for report in reports.values()
            for name, entry in report.get("benchmarks", {}).items()
        },
        "derived": {
            key: val
            for report in reports.values()
            for key, val in report.get("derived", {}).items()
        },
    }
    path = out_dir / "BENCH_history.jsonl"
    with path.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended {path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-binary", required=True, type=Path)
    parser.add_argument(
        "--prior-binary",
        type=Path,
        default=None,
        help="bench_micro built from the previous commit; when given, the "
        "obs-disabled overhead gate compares against its clean e2e run "
        "measured in this session instead of the committed (cross-session, "
        "drift-confounded) BENCH_e2e.json median",
    )
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the greedy-gain speedup misses the target",
    )
    args = parser.parse_args()

    if not args.bench_binary.exists():
        raise SystemExit(f"bench binary not found: {args.bench_binary}")
    args.out_dir.mkdir(parents=True, exist_ok=True)
    sha = git_sha(args.out_dir.resolve())

    selection = median_ns_by_name(
        run_bench(args.bench_binary, SELECTION_FILTER, args.repetitions)
    )
    engine, baseline = (selection.get(n) for n in TARGET_PAIR)
    speedup = (
        baseline["median_ns"] / engine["median_ns"]
        if engine and baseline and engine["median_ns"] > 0
        else None
    )
    celf = selection.get(CELF_BENCH, {})
    celf_reeval_rate = celf.get("counters", {}).get("reeval_rate")
    selection_report = {
        "schema": "photodtn-bench/1",
        "git_sha": sha,
        "benchmarks": selection,
        "derived": {
            "greedy_gain_speedup": speedup,
            "speedup_target": TARGET_SPEEDUP,
            "meets_target": speedup is not None and speedup >= TARGET_SPEEDUP,
            "celf_reeval_rate": celf_reeval_rate,
        },
    }
    write_report(args.out_dir / "BENCH_selection.json", selection_report)

    # Snapshot the previously committed clean e2e median *before* we
    # overwrite it: it is the baseline for the fault-layer overhead check
    # (the prior binary had no fault layer in the loop / an older one).
    prior_e2e_path = args.out_dir / "BENCH_e2e.json"
    prior_clean_ns = None
    if prior_e2e_path.exists():
        try:
            prior = json.loads(prior_e2e_path.read_text())
            prior_clean_ns = prior["benchmarks"][E2E_CLEAN]["median_ns"]
        except (json.JSONDecodeError, KeyError, TypeError):
            prior_clean_ns = None

    e2e_all = median_ns_by_name(
        run_bench(args.bench_binary, FAULTS_FILTER, args.repetitions)
    )
    e2e = {k: v for k, v in e2e_all.items() if k == E2E_CLEAN}
    e2e.update(
        median_ns_by_name(
            run_bench(args.bench_binary, E2E_EXTRA_FILTER, args.repetitions)
        )
    )
    e2e_report = {
        "schema": "photodtn-bench/1",
        "git_sha": sha,
        "benchmarks": e2e,
    }
    write_report(prior_e2e_path, e2e_report)

    clean, faulted = (e2e_all.get(n) for n in (E2E_CLEAN, E2E_FAULTED))
    faulted_vs_clean = (
        faulted["median_ns"] / clean["median_ns"]
        if clean and faulted and clean["median_ns"] > 0
        else None
    )
    # Signed drift of this commit's clean run vs the committed snapshot;
    # the overhead gates only look at slowdowns (clamped at zero), so an
    # improvement can never be mistaken for budget consumption. The
    # committed snapshot was recorded in an earlier session, so this number
    # folds in machine drift; a --prior-binary run happens in *this*
    # session and is immune to it — when present it drives both gates.
    clean_delta = (
        clean["median_ns"] / prior_clean_ns - 1.0
        if clean and prior_clean_ns
        else None
    )
    same_session_delta = None
    if args.prior_binary is not None:
        if not args.prior_binary.exists():
            raise SystemExit(f"prior binary not found: {args.prior_binary}")
        same_session_delta = same_session_clean_delta(
            args.bench_binary, args.prior_binary, args.repetitions
        )
    gate_delta = same_session_delta if same_session_delta is not None else clean_delta
    gate_overhead = max(0.0, gate_delta) if gate_delta is not None else None
    faults_report = {
        "schema": "photodtn-bench/1",
        "git_sha": sha,
        "benchmarks": e2e_all,
        "derived": {
            "faulted_vs_clean": faulted_vs_clean,
            "clean_delta_vs_prior": clean_delta,
            "clean_delta_same_session": same_session_delta,
            "clean_overhead_vs_prior": gate_overhead,
            "overhead_target": FAULT_OVERHEAD_TARGET,
            "meets_overhead_target": gate_overhead is not None
            and gate_overhead < FAULT_OVERHEAD_TARGET,
        },
    }
    write_report(args.out_dir / "BENCH_faults.json", faults_report)

    # Observability pair: what the obs layer costs when it is *on* (advisory
    # — the enabled path does real recording work), and when it is *off*
    # (the gate: the clean run vs a prior-commit clean run is exactly the
    # disabled-obs residue, since obs-off leaves one branch per site). A
    # --prior-binary measurement happens in this session on this machine, so
    # it is immune to the container drift that pollutes the committed-file
    # comparison; prefer it for the gate when present.
    obs_on = e2e_all.get(E2E_OBS)
    obs_enabled_vs_clean = (
        obs_on["median_ns"] / clean["median_ns"]
        if clean and obs_on and clean["median_ns"] > 0
        else None
    )
    obs_report = {
        "schema": "photodtn-bench/1",
        "git_sha": sha,
        "benchmarks": {
            k: v for k, v in e2e_all.items() if k in (E2E_CLEAN, E2E_OBS)
        },
        "derived": {
            "obs_enabled_vs_clean": obs_enabled_vs_clean,
            "obs_disabled_delta_vs_prior": clean_delta,
            "obs_disabled_delta_same_session": same_session_delta,
            "obs_disabled_overhead": gate_overhead,
            "obs_overhead_target": OBS_OVERHEAD_TARGET,
            "meets_obs_overhead_target": gate_overhead is not None
            and gate_overhead < OBS_OVERHEAD_TARGET,
        },
    }
    write_report(args.out_dir / "BENCH_obs.json", obs_report)

    # Checkpointing pair: what snapshotting every 500 events costs when it
    # is *on* (advisory — real serialization + an atomic file replace), and
    # when it is *off* (the gate: the clean run vs the prior clean run is
    # exactly the disabled-persistence residue, one unset-hook test per
    # event). Same drift caveats and --prior-binary preference as above.
    ckpt_on = e2e_all.get(E2E_CKPT)
    persist_enabled_vs_clean = (
        ckpt_on["median_ns"] / clean["median_ns"]
        if clean and ckpt_on and clean["median_ns"] > 0
        else None
    )
    persist_report = {
        "schema": "photodtn-bench/1",
        "git_sha": sha,
        "benchmarks": {
            k: v for k, v in e2e_all.items() if k in (E2E_CLEAN, E2E_CKPT)
        },
        "derived": {
            "persist_enabled_vs_clean": persist_enabled_vs_clean,
            "persist_disabled_delta_vs_prior": clean_delta,
            "persist_disabled_delta_same_session": same_session_delta,
            "persist_disabled_overhead": gate_overhead,
            "persist_overhead_target": PERSIST_OVERHEAD_TARGET,
            "meets_persist_overhead_target": gate_overhead is not None
            and gate_overhead < PERSIST_OVERHEAD_TARGET,
        },
    }
    write_report(args.out_dir / "BENCH_persist.json", persist_report)

    append_history(
        args.out_dir,
        sha,
        {
            "selection": selection_report,
            "e2e": e2e_report,
            "faults": faults_report,
            "obs": obs_report,
            "persist": persist_report,
        },
    )

    if speedup is not None:
        print(f"greedy gain speedup (batched vs scan, 64 PoIs / 256 cands): "
              f"{speedup:.2f}x (target {TARGET_SPEEDUP:.1f}x)")
    if celf_reeval_rate is not None:
        print(f"CELF re-evaluation rate (250 PoIs / 256 cands): "
              f"{celf_reeval_rate:.3f}")
    if faulted_vs_clean is not None:
        print(f"faulted e2e vs clean: {faulted_vs_clean:.3f}x")
    if clean_delta is not None:
        print(f"clean e2e drift vs prior commit: {100.0 * clean_delta:+.1f}% "
              f"(overhead gate < {100.0 * FAULT_OVERHEAD_TARGET:.0f}% "
              f"on slowdowns only)")
    if obs_enabled_vs_clean is not None:
        print(f"obs-enabled e2e vs clean: {obs_enabled_vs_clean:.3f}x "
              f"(obs-disabled gate < {100.0 * OBS_OVERHEAD_TARGET:.0f}% "
              f"drift, advisory)")
    if persist_enabled_vs_clean is not None:
        print(f"checkpointing e2e vs clean: {persist_enabled_vs_clean:.3f}x "
              f"(persist-disabled gate < "
              f"{100.0 * PERSIST_OVERHEAD_TARGET:.0f}% drift, advisory)")
    if same_session_delta is not None:
        print(f"obs-disabled drift vs prior binary (same session): "
              f"{100.0 * same_session_delta:+.1f}% "
              f"(gate < {100.0 * OBS_OVERHEAD_TARGET:.0f}%)")
    if args.check and (speedup is None or speedup < TARGET_SPEEDUP):
        print("FAIL: speedup target missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
