#!/usr/bin/env python3
"""Crash-recovery harness for the snapshot layer.

Runs a checkpointing simulation, SIGKILLs it at random points, restarts it
from the surviving snapshot, and repeats — then lets the final incarnation
run to completion and asserts its result JSON is byte-identical to an
uninterrupted baseline of the same spec and seed. This exercises the whole
persistence story end to end: periodic atomic checkpoint writes, kills
landing mid-simulation and mid-write, and restores that must resume without
drifting by a single byte.

Usage:
  crash_harness.py --cli build/tools/photodtn_cli [--kills 3] [--seed 1]

Exit status 0 = recovery held byte-identity; anything else is a failure.
Stdlib only; no third-party dependencies.
"""

import argparse
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time


def sim_args(scheme: str) -> list:
    # Sized so an uninterrupted run takes about a second with checkpoints
    # every few hundred events: long enough to kill mid-flight reliably,
    # short enough for CI. Faults are on, so recovery is proven against the
    # disrupted event stream, not just the clean one.
    return [
        "simulate", "--runs", "1", "--scheme", scheme,
        "--scale", "0.3", "--hours", "160", "--seed", "7",
        "--fault-interrupt", "0.2", "--fault-crash-rate", "0.02",
        "--fault-gossip-loss", "0.1",
    ]


def run_to_completion(cmd, label):
    proc = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        sys.exit(f"crash_harness: {label} exited {proc.returncode}:\n"
                 f"{proc.stderr.strip()}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cli", required=True,
                    help="path to the photodtn_cli binary")
    ap.add_argument("--scheme", default="OurScheme")
    ap.add_argument("--kills", type=int, default=3,
                    help="number of SIGKILLs to land before the final run")
    ap.add_argument("--checkpoint-every", type=int, default=500,
                    help="events between snapshots")
    ap.add_argument("--seed", type=int, default=1,
                    help="seed for the kill-timing RNG (not the simulation)")
    ap.add_argument("--workdir", default=None,
                    help="scratch directory (default: a fresh temp dir)")
    args = ap.parse_args()

    cli = os.path.abspath(args.cli)
    if not os.access(cli, os.X_OK):
        sys.exit(f"crash_harness: {cli} is not an executable")

    rng = random.Random(args.seed)
    workdir = args.workdir or tempfile.mkdtemp(prefix="photodtn_crash_")
    os.makedirs(workdir, exist_ok=True)
    base_json = os.path.join(workdir, "baseline.json")
    final_json = os.path.join(workdir, "recovered.json")
    snap = os.path.join(workdir, "checkpoint.snap")
    for stale in (base_json, final_json, snap, snap + ".tmp"):
        if os.path.exists(stale):
            os.remove(stale)

    base = sim_args(args.scheme)
    print(f"crash_harness: workdir {workdir}")
    run_to_completion([cli] + base + ["--json", base_json], "baseline run")
    print("crash_harness: baseline complete")

    def interrupted_cmd():
        cmd = [cli] + base + [
            "--checkpoint-every", str(args.checkpoint_every),
            "--checkpoint-out", snap, "--json", final_json,
        ]
        if os.path.exists(snap):
            cmd += ["--restore-from", snap]
        return cmd

    kills = 0
    attempts = 0
    # Each round (re)starts the run — from scratch before the first snapshot
    # lands, from the latest snapshot after — and kills it mid-flight. A
    # round that finishes before the kill timer still counts as an attempt;
    # the timer then shrinks so later rounds land earlier.
    delay_hi = 0.8
    while kills < args.kills:
        attempts += 1
        if attempts > 20 * args.kills:
            sys.exit("crash_harness: could not land enough kills "
                     f"({kills}/{args.kills} after {attempts} attempts); "
                     "the scenario finishes too fast on this machine")
        resumed = os.path.exists(snap)
        proc = subprocess.Popen(interrupted_cmd(), stdout=subprocess.DEVNULL,
                                stderr=subprocess.PIPE, text=True)
        time.sleep(rng.uniform(0.05, delay_hi))
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            kills += 1
            print(f"crash_harness: kill {kills}/{args.kills} "
                  f"({'resumed run' if resumed else 'fresh run'})")
        else:
            stderr = proc.stderr.read().strip()
            if proc.returncode != 0:
                sys.exit(f"crash_harness: interrupted-run candidate exited "
                         f"{proc.returncode} before the kill:\n{stderr}")
            # Finished before we could kill it; aim earlier next round.
            delay_hi = max(0.1, delay_hi * 0.5)

    if not os.path.exists(snap):
        sys.exit("crash_harness: no snapshot survived the kill rounds — "
                 "lower --checkpoint-every or raise the kill delay")

    run_to_completion(interrupted_cmd(), "recovery run")

    with open(base_json, "rb") as f:
        want = f.read()
    with open(final_json, "rb") as f:
        got = f.read()
    if want != got:
        sys.exit(f"crash_harness: FAIL — recovered result differs from the "
                 f"baseline ({base_json} vs {final_json})")
    print(f"crash_harness: OK — {kills} kill(s), {attempts} attempt(s), "
          f"recovered result byte-identical to the baseline")
    if args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
