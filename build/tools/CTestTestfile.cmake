# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli.schemes "/root/repo/build/tools/photodtn_cli" "schemes")
set_tests_properties(cli.schemes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.simulate "/root/repo/build/tools/photodtn_cli" "simulate" "--scale" "0.1" "--runs" "1" "--hours" "10" "--scheme" "Spray&Wait")
set_tests_properties(cli.simulate PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.trace_roundtrip "sh" "-c" "/root/repo/build/tools/photodtn_cli trace-gen --out cli_test_trace.csv --scale 0.1           && /root/repo/build/tools/photodtn_cli trace-stats cli_test_trace.csv")
set_tests_properties(cli.trace_roundtrip PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
