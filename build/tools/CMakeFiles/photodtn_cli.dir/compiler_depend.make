# Empty compiler generated dependencies file for photodtn_cli.
# This may be replaced when dependencies are built.
