file(REMOVE_RECURSE
  "CMakeFiles/photodtn_cli.dir/photodtn_cli.cpp.o"
  "CMakeFiles/photodtn_cli.dir/photodtn_cli.cpp.o.d"
  "photodtn_cli"
  "photodtn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
