file(REMOVE_RECURSE
  "CMakeFiles/photodtn_cli_lib.dir/cli_config.cpp.o"
  "CMakeFiles/photodtn_cli_lib.dir/cli_config.cpp.o.d"
  "libphotodtn_cli_lib.a"
  "libphotodtn_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
