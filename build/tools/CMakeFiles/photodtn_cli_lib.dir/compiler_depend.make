# Empty compiler generated dependencies file for photodtn_cli_lib.
# This may be replaced when dependencies are built.
