file(REMOVE_RECURSE
  "libphotodtn_cli_lib.a"
)
