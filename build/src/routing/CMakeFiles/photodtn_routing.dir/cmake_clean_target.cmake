file(REMOVE_RECURSE
  "libphotodtn_routing.a"
)
