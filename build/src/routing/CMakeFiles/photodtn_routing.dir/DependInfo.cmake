
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/prophet.cpp" "src/routing/CMakeFiles/photodtn_routing.dir/prophet.cpp.o" "gcc" "src/routing/CMakeFiles/photodtn_routing.dir/prophet.cpp.o.d"
  "/root/repo/src/routing/rate_estimator.cpp" "src/routing/CMakeFiles/photodtn_routing.dir/rate_estimator.cpp.o" "gcc" "src/routing/CMakeFiles/photodtn_routing.dir/rate_estimator.cpp.o.d"
  "/root/repo/src/routing/spray_counter.cpp" "src/routing/CMakeFiles/photodtn_routing.dir/spray_counter.cpp.o" "gcc" "src/routing/CMakeFiles/photodtn_routing.dir/spray_counter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/photodtn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/photodtn_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/photodtn_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
