# Empty compiler generated dependencies file for photodtn_routing.
# This may be replaced when dependencies are built.
