file(REMOVE_RECURSE
  "CMakeFiles/photodtn_routing.dir/prophet.cpp.o"
  "CMakeFiles/photodtn_routing.dir/prophet.cpp.o.d"
  "CMakeFiles/photodtn_routing.dir/rate_estimator.cpp.o"
  "CMakeFiles/photodtn_routing.dir/rate_estimator.cpp.o.d"
  "CMakeFiles/photodtn_routing.dir/spray_counter.cpp.o"
  "CMakeFiles/photodtn_routing.dir/spray_counter.cpp.o.d"
  "libphotodtn_routing.a"
  "libphotodtn_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
