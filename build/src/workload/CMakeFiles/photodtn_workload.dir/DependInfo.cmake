
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/photo_gen.cpp" "src/workload/CMakeFiles/photodtn_workload.dir/photo_gen.cpp.o" "gcc" "src/workload/CMakeFiles/photodtn_workload.dir/photo_gen.cpp.o.d"
  "/root/repo/src/workload/poi_gen.cpp" "src/workload/CMakeFiles/photodtn_workload.dir/poi_gen.cpp.o" "gcc" "src/workload/CMakeFiles/photodtn_workload.dir/poi_gen.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/photodtn_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/photodtn_workload.dir/scenario.cpp.o.d"
  "/root/repo/src/workload/sensor_model.cpp" "src/workload/CMakeFiles/photodtn_workload.dir/sensor_model.cpp.o" "gcc" "src/workload/CMakeFiles/photodtn_workload.dir/sensor_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coverage/CMakeFiles/photodtn_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/dtn/CMakeFiles/photodtn_dtn.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/photodtn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/photodtn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/photodtn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/photodtn_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
