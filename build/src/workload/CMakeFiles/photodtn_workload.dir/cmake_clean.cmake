file(REMOVE_RECURSE
  "CMakeFiles/photodtn_workload.dir/photo_gen.cpp.o"
  "CMakeFiles/photodtn_workload.dir/photo_gen.cpp.o.d"
  "CMakeFiles/photodtn_workload.dir/poi_gen.cpp.o"
  "CMakeFiles/photodtn_workload.dir/poi_gen.cpp.o.d"
  "CMakeFiles/photodtn_workload.dir/scenario.cpp.o"
  "CMakeFiles/photodtn_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/photodtn_workload.dir/sensor_model.cpp.o"
  "CMakeFiles/photodtn_workload.dir/sensor_model.cpp.o.d"
  "libphotodtn_workload.a"
  "libphotodtn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
