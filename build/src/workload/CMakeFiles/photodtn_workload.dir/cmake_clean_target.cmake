file(REMOVE_RECURSE
  "libphotodtn_workload.a"
)
