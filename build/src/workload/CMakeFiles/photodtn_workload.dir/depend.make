# Empty dependencies file for photodtn_workload.
# This may be replaced when dependencies are built.
