file(REMOVE_RECURSE
  "CMakeFiles/photodtn_trace.dir/contact_trace.cpp.o"
  "CMakeFiles/photodtn_trace.dir/contact_trace.cpp.o.d"
  "CMakeFiles/photodtn_trace.dir/mobility_rwp.cpp.o"
  "CMakeFiles/photodtn_trace.dir/mobility_rwp.cpp.o.d"
  "CMakeFiles/photodtn_trace.dir/synthetic_trace.cpp.o"
  "CMakeFiles/photodtn_trace.dir/synthetic_trace.cpp.o.d"
  "CMakeFiles/photodtn_trace.dir/temporal_reachability.cpp.o"
  "CMakeFiles/photodtn_trace.dir/temporal_reachability.cpp.o.d"
  "CMakeFiles/photodtn_trace.dir/trace_analysis.cpp.o"
  "CMakeFiles/photodtn_trace.dir/trace_analysis.cpp.o.d"
  "CMakeFiles/photodtn_trace.dir/trace_io.cpp.o"
  "CMakeFiles/photodtn_trace.dir/trace_io.cpp.o.d"
  "libphotodtn_trace.a"
  "libphotodtn_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
