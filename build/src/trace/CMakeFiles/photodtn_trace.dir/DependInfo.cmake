
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/contact_trace.cpp" "src/trace/CMakeFiles/photodtn_trace.dir/contact_trace.cpp.o" "gcc" "src/trace/CMakeFiles/photodtn_trace.dir/contact_trace.cpp.o.d"
  "/root/repo/src/trace/mobility_rwp.cpp" "src/trace/CMakeFiles/photodtn_trace.dir/mobility_rwp.cpp.o" "gcc" "src/trace/CMakeFiles/photodtn_trace.dir/mobility_rwp.cpp.o.d"
  "/root/repo/src/trace/synthetic_trace.cpp" "src/trace/CMakeFiles/photodtn_trace.dir/synthetic_trace.cpp.o" "gcc" "src/trace/CMakeFiles/photodtn_trace.dir/synthetic_trace.cpp.o.d"
  "/root/repo/src/trace/temporal_reachability.cpp" "src/trace/CMakeFiles/photodtn_trace.dir/temporal_reachability.cpp.o" "gcc" "src/trace/CMakeFiles/photodtn_trace.dir/temporal_reachability.cpp.o.d"
  "/root/repo/src/trace/trace_analysis.cpp" "src/trace/CMakeFiles/photodtn_trace.dir/trace_analysis.cpp.o" "gcc" "src/trace/CMakeFiles/photodtn_trace.dir/trace_analysis.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/photodtn_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/photodtn_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/photodtn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/photodtn_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
