# Empty compiler generated dependencies file for photodtn_trace.
# This may be replaced when dependencies are built.
