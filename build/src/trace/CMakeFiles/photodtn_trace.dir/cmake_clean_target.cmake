file(REMOVE_RECURSE
  "libphotodtn_trace.a"
)
