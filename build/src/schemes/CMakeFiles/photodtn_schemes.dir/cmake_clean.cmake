file(REMOVE_RECURSE
  "CMakeFiles/photodtn_schemes.dir/best_possible.cpp.o"
  "CMakeFiles/photodtn_schemes.dir/best_possible.cpp.o.d"
  "CMakeFiles/photodtn_schemes.dir/common.cpp.o"
  "CMakeFiles/photodtn_schemes.dir/common.cpp.o.d"
  "CMakeFiles/photodtn_schemes.dir/epidemic.cpp.o"
  "CMakeFiles/photodtn_schemes.dir/epidemic.cpp.o.d"
  "CMakeFiles/photodtn_schemes.dir/factory.cpp.o"
  "CMakeFiles/photodtn_schemes.dir/factory.cpp.o.d"
  "CMakeFiles/photodtn_schemes.dir/modified_spray.cpp.o"
  "CMakeFiles/photodtn_schemes.dir/modified_spray.cpp.o.d"
  "CMakeFiles/photodtn_schemes.dir/our_scheme.cpp.o"
  "CMakeFiles/photodtn_schemes.dir/our_scheme.cpp.o.d"
  "CMakeFiles/photodtn_schemes.dir/photonet.cpp.o"
  "CMakeFiles/photodtn_schemes.dir/photonet.cpp.o.d"
  "CMakeFiles/photodtn_schemes.dir/prophet_routing.cpp.o"
  "CMakeFiles/photodtn_schemes.dir/prophet_routing.cpp.o.d"
  "CMakeFiles/photodtn_schemes.dir/spray_and_wait.cpp.o"
  "CMakeFiles/photodtn_schemes.dir/spray_and_wait.cpp.o.d"
  "libphotodtn_schemes.a"
  "libphotodtn_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
