# Empty compiler generated dependencies file for photodtn_schemes.
# This may be replaced when dependencies are built.
