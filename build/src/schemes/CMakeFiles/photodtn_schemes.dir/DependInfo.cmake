
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schemes/best_possible.cpp" "src/schemes/CMakeFiles/photodtn_schemes.dir/best_possible.cpp.o" "gcc" "src/schemes/CMakeFiles/photodtn_schemes.dir/best_possible.cpp.o.d"
  "/root/repo/src/schemes/common.cpp" "src/schemes/CMakeFiles/photodtn_schemes.dir/common.cpp.o" "gcc" "src/schemes/CMakeFiles/photodtn_schemes.dir/common.cpp.o.d"
  "/root/repo/src/schemes/epidemic.cpp" "src/schemes/CMakeFiles/photodtn_schemes.dir/epidemic.cpp.o" "gcc" "src/schemes/CMakeFiles/photodtn_schemes.dir/epidemic.cpp.o.d"
  "/root/repo/src/schemes/factory.cpp" "src/schemes/CMakeFiles/photodtn_schemes.dir/factory.cpp.o" "gcc" "src/schemes/CMakeFiles/photodtn_schemes.dir/factory.cpp.o.d"
  "/root/repo/src/schemes/modified_spray.cpp" "src/schemes/CMakeFiles/photodtn_schemes.dir/modified_spray.cpp.o" "gcc" "src/schemes/CMakeFiles/photodtn_schemes.dir/modified_spray.cpp.o.d"
  "/root/repo/src/schemes/our_scheme.cpp" "src/schemes/CMakeFiles/photodtn_schemes.dir/our_scheme.cpp.o" "gcc" "src/schemes/CMakeFiles/photodtn_schemes.dir/our_scheme.cpp.o.d"
  "/root/repo/src/schemes/photonet.cpp" "src/schemes/CMakeFiles/photodtn_schemes.dir/photonet.cpp.o" "gcc" "src/schemes/CMakeFiles/photodtn_schemes.dir/photonet.cpp.o.d"
  "/root/repo/src/schemes/prophet_routing.cpp" "src/schemes/CMakeFiles/photodtn_schemes.dir/prophet_routing.cpp.o" "gcc" "src/schemes/CMakeFiles/photodtn_schemes.dir/prophet_routing.cpp.o.d"
  "/root/repo/src/schemes/spray_and_wait.cpp" "src/schemes/CMakeFiles/photodtn_schemes.dir/spray_and_wait.cpp.o" "gcc" "src/schemes/CMakeFiles/photodtn_schemes.dir/spray_and_wait.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dtn/CMakeFiles/photodtn_dtn.dir/DependInfo.cmake"
  "/root/repo/build/src/selection/CMakeFiles/photodtn_selection.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/photodtn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/photodtn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/photodtn_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/photodtn_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/photodtn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
