file(REMOVE_RECURSE
  "libphotodtn_schemes.a"
)
