file(REMOVE_RECURSE
  "libphotodtn_sim.a"
)
