file(REMOVE_RECURSE
  "CMakeFiles/photodtn_sim.dir/experiment.cpp.o"
  "CMakeFiles/photodtn_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/photodtn_sim.dir/result_io.cpp.o"
  "CMakeFiles/photodtn_sim.dir/result_io.cpp.o.d"
  "libphotodtn_sim.a"
  "libphotodtn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
