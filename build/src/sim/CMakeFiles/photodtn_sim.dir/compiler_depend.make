# Empty compiler generated dependencies file for photodtn_sim.
# This may be replaced when dependencies are built.
