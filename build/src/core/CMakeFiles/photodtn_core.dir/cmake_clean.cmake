file(REMOVE_RECURSE
  "CMakeFiles/photodtn_core.dir/photocrowd.cpp.o"
  "CMakeFiles/photodtn_core.dir/photocrowd.cpp.o.d"
  "libphotodtn_core.a"
  "libphotodtn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
