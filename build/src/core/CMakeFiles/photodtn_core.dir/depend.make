# Empty dependencies file for photodtn_core.
# This may be replaced when dependencies are built.
