file(REMOVE_RECURSE
  "libphotodtn_core.a"
)
