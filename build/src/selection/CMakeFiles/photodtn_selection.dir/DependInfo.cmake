
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selection/exact_solver.cpp" "src/selection/CMakeFiles/photodtn_selection.dir/exact_solver.cpp.o" "gcc" "src/selection/CMakeFiles/photodtn_selection.dir/exact_solver.cpp.o.d"
  "/root/repo/src/selection/expected_coverage.cpp" "src/selection/CMakeFiles/photodtn_selection.dir/expected_coverage.cpp.o" "gcc" "src/selection/CMakeFiles/photodtn_selection.dir/expected_coverage.cpp.o.d"
  "/root/repo/src/selection/greedy_selector.cpp" "src/selection/CMakeFiles/photodtn_selection.dir/greedy_selector.cpp.o" "gcc" "src/selection/CMakeFiles/photodtn_selection.dir/greedy_selector.cpp.o.d"
  "/root/repo/src/selection/metadata_cache.cpp" "src/selection/CMakeFiles/photodtn_selection.dir/metadata_cache.cpp.o" "gcc" "src/selection/CMakeFiles/photodtn_selection.dir/metadata_cache.cpp.o.d"
  "/root/repo/src/selection/selection_env.cpp" "src/selection/CMakeFiles/photodtn_selection.dir/selection_env.cpp.o" "gcc" "src/selection/CMakeFiles/photodtn_selection.dir/selection_env.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coverage/CMakeFiles/photodtn_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/photodtn_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/photodtn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
