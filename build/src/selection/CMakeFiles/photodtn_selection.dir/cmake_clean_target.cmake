file(REMOVE_RECURSE
  "libphotodtn_selection.a"
)
