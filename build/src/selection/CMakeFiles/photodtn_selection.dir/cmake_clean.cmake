file(REMOVE_RECURSE
  "CMakeFiles/photodtn_selection.dir/exact_solver.cpp.o"
  "CMakeFiles/photodtn_selection.dir/exact_solver.cpp.o.d"
  "CMakeFiles/photodtn_selection.dir/expected_coverage.cpp.o"
  "CMakeFiles/photodtn_selection.dir/expected_coverage.cpp.o.d"
  "CMakeFiles/photodtn_selection.dir/greedy_selector.cpp.o"
  "CMakeFiles/photodtn_selection.dir/greedy_selector.cpp.o.d"
  "CMakeFiles/photodtn_selection.dir/metadata_cache.cpp.o"
  "CMakeFiles/photodtn_selection.dir/metadata_cache.cpp.o.d"
  "CMakeFiles/photodtn_selection.dir/selection_env.cpp.o"
  "CMakeFiles/photodtn_selection.dir/selection_env.cpp.o.d"
  "libphotodtn_selection.a"
  "libphotodtn_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
