# Empty compiler generated dependencies file for photodtn_selection.
# This may be replaced when dependencies are built.
