
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coverage/aspect_profile.cpp" "src/coverage/CMakeFiles/photodtn_coverage.dir/aspect_profile.cpp.o" "gcc" "src/coverage/CMakeFiles/photodtn_coverage.dir/aspect_profile.cpp.o.d"
  "/root/repo/src/coverage/coverage_map.cpp" "src/coverage/CMakeFiles/photodtn_coverage.dir/coverage_map.cpp.o" "gcc" "src/coverage/CMakeFiles/photodtn_coverage.dir/coverage_map.cpp.o.d"
  "/root/repo/src/coverage/coverage_model.cpp" "src/coverage/CMakeFiles/photodtn_coverage.dir/coverage_model.cpp.o" "gcc" "src/coverage/CMakeFiles/photodtn_coverage.dir/coverage_model.cpp.o.d"
  "/root/repo/src/coverage/photo.cpp" "src/coverage/CMakeFiles/photodtn_coverage.dir/photo.cpp.o" "gcc" "src/coverage/CMakeFiles/photodtn_coverage.dir/photo.cpp.o.d"
  "/root/repo/src/coverage/poi_index.cpp" "src/coverage/CMakeFiles/photodtn_coverage.dir/poi_index.cpp.o" "gcc" "src/coverage/CMakeFiles/photodtn_coverage.dir/poi_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/photodtn_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/photodtn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
