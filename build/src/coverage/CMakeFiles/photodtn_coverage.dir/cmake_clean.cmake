file(REMOVE_RECURSE
  "CMakeFiles/photodtn_coverage.dir/aspect_profile.cpp.o"
  "CMakeFiles/photodtn_coverage.dir/aspect_profile.cpp.o.d"
  "CMakeFiles/photodtn_coverage.dir/coverage_map.cpp.o"
  "CMakeFiles/photodtn_coverage.dir/coverage_map.cpp.o.d"
  "CMakeFiles/photodtn_coverage.dir/coverage_model.cpp.o"
  "CMakeFiles/photodtn_coverage.dir/coverage_model.cpp.o.d"
  "CMakeFiles/photodtn_coverage.dir/photo.cpp.o"
  "CMakeFiles/photodtn_coverage.dir/photo.cpp.o.d"
  "CMakeFiles/photodtn_coverage.dir/poi_index.cpp.o"
  "CMakeFiles/photodtn_coverage.dir/poi_index.cpp.o.d"
  "libphotodtn_coverage.a"
  "libphotodtn_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
