# Empty dependencies file for photodtn_coverage.
# This may be replaced when dependencies are built.
