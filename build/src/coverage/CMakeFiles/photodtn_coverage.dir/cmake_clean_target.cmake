file(REMOVE_RECURSE
  "libphotodtn_coverage.a"
)
