file(REMOVE_RECURSE
  "CMakeFiles/photodtn_util.dir/args.cpp.o"
  "CMakeFiles/photodtn_util.dir/args.cpp.o.d"
  "CMakeFiles/photodtn_util.dir/env.cpp.o"
  "CMakeFiles/photodtn_util.dir/env.cpp.o.d"
  "CMakeFiles/photodtn_util.dir/json.cpp.o"
  "CMakeFiles/photodtn_util.dir/json.cpp.o.d"
  "CMakeFiles/photodtn_util.dir/rng.cpp.o"
  "CMakeFiles/photodtn_util.dir/rng.cpp.o.d"
  "CMakeFiles/photodtn_util.dir/stats.cpp.o"
  "CMakeFiles/photodtn_util.dir/stats.cpp.o.d"
  "CMakeFiles/photodtn_util.dir/table.cpp.o"
  "CMakeFiles/photodtn_util.dir/table.cpp.o.d"
  "libphotodtn_util.a"
  "libphotodtn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
