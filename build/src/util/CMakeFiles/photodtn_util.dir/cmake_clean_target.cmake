file(REMOVE_RECURSE
  "libphotodtn_util.a"
)
