# Empty compiler generated dependencies file for photodtn_util.
# This may be replaced when dependencies are built.
