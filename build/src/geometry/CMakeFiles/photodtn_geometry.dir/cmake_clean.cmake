file(REMOVE_RECURSE
  "CMakeFiles/photodtn_geometry.dir/angle.cpp.o"
  "CMakeFiles/photodtn_geometry.dir/angle.cpp.o.d"
  "CMakeFiles/photodtn_geometry.dir/arc_set.cpp.o"
  "CMakeFiles/photodtn_geometry.dir/arc_set.cpp.o.d"
  "CMakeFiles/photodtn_geometry.dir/sector.cpp.o"
  "CMakeFiles/photodtn_geometry.dir/sector.cpp.o.d"
  "CMakeFiles/photodtn_geometry.dir/vec2.cpp.o"
  "CMakeFiles/photodtn_geometry.dir/vec2.cpp.o.d"
  "libphotodtn_geometry.a"
  "libphotodtn_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
