file(REMOVE_RECURSE
  "libphotodtn_geometry.a"
)
