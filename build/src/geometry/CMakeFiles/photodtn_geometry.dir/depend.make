# Empty dependencies file for photodtn_geometry.
# This may be replaced when dependencies are built.
