
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/angle.cpp" "src/geometry/CMakeFiles/photodtn_geometry.dir/angle.cpp.o" "gcc" "src/geometry/CMakeFiles/photodtn_geometry.dir/angle.cpp.o.d"
  "/root/repo/src/geometry/arc_set.cpp" "src/geometry/CMakeFiles/photodtn_geometry.dir/arc_set.cpp.o" "gcc" "src/geometry/CMakeFiles/photodtn_geometry.dir/arc_set.cpp.o.d"
  "/root/repo/src/geometry/sector.cpp" "src/geometry/CMakeFiles/photodtn_geometry.dir/sector.cpp.o" "gcc" "src/geometry/CMakeFiles/photodtn_geometry.dir/sector.cpp.o.d"
  "/root/repo/src/geometry/vec2.cpp" "src/geometry/CMakeFiles/photodtn_geometry.dir/vec2.cpp.o" "gcc" "src/geometry/CMakeFiles/photodtn_geometry.dir/vec2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/photodtn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
