# Empty dependencies file for photodtn_viz.
# This may be replaced when dependencies are built.
