file(REMOVE_RECURSE
  "libphotodtn_viz.a"
)
