file(REMOVE_RECURSE
  "CMakeFiles/photodtn_viz.dir/coverage_scene.cpp.o"
  "CMakeFiles/photodtn_viz.dir/coverage_scene.cpp.o.d"
  "CMakeFiles/photodtn_viz.dir/svg_canvas.cpp.o"
  "CMakeFiles/photodtn_viz.dir/svg_canvas.cpp.o.d"
  "libphotodtn_viz.a"
  "libphotodtn_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
