
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/coverage_scene.cpp" "src/viz/CMakeFiles/photodtn_viz.dir/coverage_scene.cpp.o" "gcc" "src/viz/CMakeFiles/photodtn_viz.dir/coverage_scene.cpp.o.d"
  "/root/repo/src/viz/svg_canvas.cpp" "src/viz/CMakeFiles/photodtn_viz.dir/svg_canvas.cpp.o" "gcc" "src/viz/CMakeFiles/photodtn_viz.dir/svg_canvas.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coverage/CMakeFiles/photodtn_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/photodtn_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/photodtn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
