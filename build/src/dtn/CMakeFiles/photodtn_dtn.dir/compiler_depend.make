# Empty compiler generated dependencies file for photodtn_dtn.
# This may be replaced when dependencies are built.
