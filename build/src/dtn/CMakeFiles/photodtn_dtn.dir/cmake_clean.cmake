file(REMOVE_RECURSE
  "CMakeFiles/photodtn_dtn.dir/node.cpp.o"
  "CMakeFiles/photodtn_dtn.dir/node.cpp.o.d"
  "CMakeFiles/photodtn_dtn.dir/photo_store.cpp.o"
  "CMakeFiles/photodtn_dtn.dir/photo_store.cpp.o.d"
  "CMakeFiles/photodtn_dtn.dir/simulator.cpp.o"
  "CMakeFiles/photodtn_dtn.dir/simulator.cpp.o.d"
  "libphotodtn_dtn.a"
  "libphotodtn_dtn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photodtn_dtn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
