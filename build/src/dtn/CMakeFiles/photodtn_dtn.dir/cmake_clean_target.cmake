file(REMOVE_RECURSE
  "libphotodtn_dtn.a"
)
