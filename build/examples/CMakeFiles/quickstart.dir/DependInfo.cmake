
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/photodtn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/photodtn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/photodtn_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/photodtn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/photodtn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/photodtn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/photodtn_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/dtn/CMakeFiles/photodtn_dtn.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/photodtn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/selection/CMakeFiles/photodtn_selection.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/photodtn_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/photodtn_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
