# Empty compiler generated dependencies file for church_demo.
# This may be replaced when dependencies are built.
