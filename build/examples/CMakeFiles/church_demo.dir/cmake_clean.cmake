file(REMOVE_RECURSE
  "CMakeFiles/church_demo.dir/church_demo.cpp.o"
  "CMakeFiles/church_demo.dir/church_demo.cpp.o.d"
  "church_demo"
  "church_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/church_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
