file(REMOVE_RECURSE
  "CMakeFiles/disaster_recovery.dir/disaster_recovery.cpp.o"
  "CMakeFiles/disaster_recovery.dir/disaster_recovery.cpp.o.d"
  "disaster_recovery"
  "disaster_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaster_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
