file(REMOVE_RECURSE
  "CMakeFiles/mission_timeline.dir/mission_timeline.cpp.o"
  "CMakeFiles/mission_timeline.dir/mission_timeline.cpp.o.d"
  "mission_timeline"
  "mission_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
