# Empty dependencies file for mission_timeline.
# This may be replaced when dependencies are built.
