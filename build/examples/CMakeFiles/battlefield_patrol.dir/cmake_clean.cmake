file(REMOVE_RECURSE
  "CMakeFiles/battlefield_patrol.dir/battlefield_patrol.cpp.o"
  "CMakeFiles/battlefield_patrol.dir/battlefield_patrol.cpp.o.d"
  "battlefield_patrol"
  "battlefield_patrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battlefield_patrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
