# Empty compiler generated dependencies file for battlefield_patrol.
# This may be replaced when dependencies are built.
