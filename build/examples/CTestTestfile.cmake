# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.church_demo "/root/repo/build/examples/church_demo")
set_tests_properties(example.church_demo PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.disaster_recovery "/root/repo/build/examples/disaster_recovery")
set_tests_properties(example.disaster_recovery PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.battlefield_patrol "/root/repo/build/examples/battlefield_patrol")
set_tests_properties(example.battlefield_patrol PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.mission_timeline "/root/repo/build/examples/mission_timeline")
set_tests_properties(example.mission_timeline PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
