file(REMOVE_RECURSE
  "../bench/bench_fig8_genrate"
  "../bench/bench_fig8_genrate.pdb"
  "CMakeFiles/bench_fig8_genrate.dir/bench_fig8_genrate.cpp.o"
  "CMakeFiles/bench_fig8_genrate.dir/bench_fig8_genrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_genrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
