# Empty dependencies file for bench_fig8_genrate.
# This may be replaced when dependencies are built.
