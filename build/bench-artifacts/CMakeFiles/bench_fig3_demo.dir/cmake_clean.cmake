file(REMOVE_RECURSE
  "../bench/bench_fig3_demo"
  "../bench/bench_fig3_demo.pdb"
  "CMakeFiles/bench_fig3_demo.dir/bench_fig3_demo.cpp.o"
  "CMakeFiles/bench_fig3_demo.dir/bench_fig3_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
