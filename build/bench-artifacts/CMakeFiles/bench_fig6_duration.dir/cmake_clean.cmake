file(REMOVE_RECURSE
  "../bench/bench_fig6_duration"
  "../bench/bench_fig6_duration.pdb"
  "CMakeFiles/bench_fig6_duration.dir/bench_fig6_duration.cpp.o"
  "CMakeFiles/bench_fig6_duration.dir/bench_fig6_duration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
