# Empty dependencies file for photodtn_tests.
# This may be replaced when dependencies are built.
