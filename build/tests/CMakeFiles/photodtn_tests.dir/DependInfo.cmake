
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/photocrowd_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/core/photocrowd_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/core/photocrowd_test.cpp.o.d"
  "/root/repo/tests/coverage/aspect_profile_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/coverage/aspect_profile_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/coverage/aspect_profile_test.cpp.o.d"
  "/root/repo/tests/coverage/coverage_map_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/coverage/coverage_map_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/coverage/coverage_map_test.cpp.o.d"
  "/root/repo/tests/coverage/coverage_model_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/coverage/coverage_model_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/coverage/coverage_model_test.cpp.o.d"
  "/root/repo/tests/coverage/coverage_value_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/coverage/coverage_value_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/coverage/coverage_value_test.cpp.o.d"
  "/root/repo/tests/coverage/photo_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/coverage/photo_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/coverage/photo_test.cpp.o.d"
  "/root/repo/tests/coverage/poi_index_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/coverage/poi_index_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/coverage/poi_index_test.cpp.o.d"
  "/root/repo/tests/coverage/quality_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/coverage/quality_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/coverage/quality_test.cpp.o.d"
  "/root/repo/tests/dtn/event_listener_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/dtn/event_listener_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/dtn/event_listener_test.cpp.o.d"
  "/root/repo/tests/dtn/photo_store_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/dtn/photo_store_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/dtn/photo_store_test.cpp.o.d"
  "/root/repo/tests/dtn/simulator_fuzz_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/dtn/simulator_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/dtn/simulator_fuzz_test.cpp.o.d"
  "/root/repo/tests/dtn/simulator_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/dtn/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/dtn/simulator_test.cpp.o.d"
  "/root/repo/tests/geometry/angle_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/geometry/angle_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/geometry/angle_test.cpp.o.d"
  "/root/repo/tests/geometry/arc_set_fuzz_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/geometry/arc_set_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/geometry/arc_set_fuzz_test.cpp.o.d"
  "/root/repo/tests/geometry/arc_set_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/geometry/arc_set_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/geometry/arc_set_test.cpp.o.d"
  "/root/repo/tests/geometry/sector_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/geometry/sector_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/geometry/sector_test.cpp.o.d"
  "/root/repo/tests/geometry/vec2_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/geometry/vec2_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/geometry/vec2_test.cpp.o.d"
  "/root/repo/tests/integration/demo_ordering_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/integration/demo_ordering_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/integration/demo_ordering_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/routing/prophet_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/routing/prophet_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/routing/prophet_test.cpp.o.d"
  "/root/repo/tests/routing/rate_estimator_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/routing/rate_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/routing/rate_estimator_test.cpp.o.d"
  "/root/repo/tests/routing/spray_counter_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/routing/spray_counter_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/routing/spray_counter_test.cpp.o.d"
  "/root/repo/tests/schemes/baselines_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/schemes/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/schemes/baselines_test.cpp.o.d"
  "/root/repo/tests/schemes/extra_baselines_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/schemes/extra_baselines_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/schemes/extra_baselines_test.cpp.o.d"
  "/root/repo/tests/schemes/our_scheme_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/schemes/our_scheme_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/schemes/our_scheme_test.cpp.o.d"
  "/root/repo/tests/selection/exact_solver_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/selection/exact_solver_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/selection/exact_solver_test.cpp.o.d"
  "/root/repo/tests/selection/expected_coverage_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/selection/expected_coverage_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/selection/expected_coverage_test.cpp.o.d"
  "/root/repo/tests/selection/greedy_selector_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/selection/greedy_selector_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/selection/greedy_selector_test.cpp.o.d"
  "/root/repo/tests/selection/metadata_cache_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/selection/metadata_cache_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/selection/metadata_cache_test.cpp.o.d"
  "/root/repo/tests/selection/selection_env_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/selection/selection_env_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/selection/selection_env_test.cpp.o.d"
  "/root/repo/tests/sim/experiment_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/sim/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/sim/experiment_test.cpp.o.d"
  "/root/repo/tests/sim/result_io_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/sim/result_io_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/sim/result_io_test.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/photodtn_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/tools/cli_config_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/tools/cli_config_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/tools/cli_config_test.cpp.o.d"
  "/root/repo/tests/trace/contact_trace_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/trace/contact_trace_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/trace/contact_trace_test.cpp.o.d"
  "/root/repo/tests/trace/mobility_rwp_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/trace/mobility_rwp_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/trace/mobility_rwp_test.cpp.o.d"
  "/root/repo/tests/trace/synthetic_trace_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/trace/synthetic_trace_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/trace/synthetic_trace_test.cpp.o.d"
  "/root/repo/tests/trace/temporal_reachability_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/trace/temporal_reachability_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/trace/temporal_reachability_test.cpp.o.d"
  "/root/repo/tests/trace/trace_analysis_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/trace/trace_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/trace/trace_analysis_test.cpp.o.d"
  "/root/repo/tests/trace/trace_io_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/trace/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/trace/trace_io_test.cpp.o.d"
  "/root/repo/tests/util/args_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/util/args_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/util/args_test.cpp.o.d"
  "/root/repo/tests/util/env_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/util/env_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/util/env_test.cpp.o.d"
  "/root/repo/tests/util/json_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/util/json_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/util/json_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/viz/viz_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/viz/viz_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/viz/viz_test.cpp.o.d"
  "/root/repo/tests/workload/workload_test.cpp" "tests/CMakeFiles/photodtn_tests.dir/workload/workload_test.cpp.o" "gcc" "tests/CMakeFiles/photodtn_tests.dir/workload/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/photodtn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/photodtn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/photodtn_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/selection/CMakeFiles/photodtn_selection.dir/DependInfo.cmake"
  "/root/repo/build/src/dtn/CMakeFiles/photodtn_dtn.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/photodtn_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/photodtn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/photodtn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/photodtn_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/photodtn_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/photodtn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/photodtn_viz.dir/DependInfo.cmake"
  "/root/repo/build/tools/CMakeFiles/photodtn_cli_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
