#!/usr/bin/env bash
# Full-fidelity reproduction of the paper's evaluation: Table I scale
# (97/54 nodes, 300/200 h) with 50 runs per data point, as in Section V.
# This is hours of CPU; the default bench invocation (scale 0.3, 3 runs)
# reproduces the same shapes in minutes.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-paper_repro_$(date +%Y%m%d_%H%M%S)}
mkdir -p "$OUT"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

export PHOTODTN_BENCH_SCALE=1.0
export PHOTODTN_BENCH_RUNS=${PHOTODTN_BENCH_RUNS:-50}
export PHOTODTN_BENCH_CSV="$OUT"

for b in "$BUILD"/bench/*; do
  name=$(basename "$b")
  echo "=== $name (scale=1.0, runs=$PHOTODTN_BENCH_RUNS) ==="
  "$b" | tee "$OUT/$name.txt"
done

echo "All outputs and CSVs in $OUT/"
